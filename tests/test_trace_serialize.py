"""Tests for trace save/load."""

import pytest

from repro.isa import assemble
from repro.trace import (
    FunctionalExecutor,
    TraceFormatError,
    dump_trace,
    load_trace,
    read_trace,
    save_trace,
)
from repro.workloads import all_loops


def make_trace(source):
    program = assemble(source)
    executor = FunctionalExecutor(program)
    return executor.run(), program


class TestRoundtrip:
    def test_simple_roundtrip(self):
        trace, program = make_trace("""
            A_IMM A0, 2
        loop:
            A_ADDI A0, A0, -1
            BR_NONZERO A0, loop
            HALT
        """)
        text = dump_trace(trace)
        loaded = load_trace(text, program)
        assert len(loaded) == len(trace)
        for a, b in zip(trace, loaded):
            assert (a.seq, a.pc, a.taken, a.address) == \
                (b.seq, b.pc, b.taken, b.address)
            assert a.inst is b.inst

    def test_memory_addresses_survive(self):
        trace, program = make_trace("""
            A_IMM A1, 100
            S_IMM S1, 1.0
            STORE_S A1[3], S1
            LOAD_S S2, A1[3]
            HALT
        """)
        loaded = load_trace(dump_trace(trace), program)
        addresses = [e.address for e in loaded if e.address is not None]
        assert addresses == [103, 103]

    def test_livermore_roundtrip(self):
        workload = all_loops()[4]
        executor = FunctionalExecutor(workload.program,
                                      workload.make_memory())
        trace = executor.run()
        loaded = load_trace(dump_trace(trace), workload.program)
        assert len(loaded) == len(trace)
        assert loaded.fu_mix() == trace.fu_mix()

    def test_file_roundtrip(self, tmp_path):
        trace, program = make_trace("NOP\nNOP\nHALT")
        path = tmp_path / "trace.txt"
        save_trace(trace, str(path))
        loaded = read_trace(str(path), program)
        assert len(loaded) == 2


class TestErrors:
    @pytest.fixture
    def program(self):
        return assemble("NOP\nBR_ZERO A0, end\nend: HALT")

    def test_missing_header(self, program):
        with pytest.raises(TraceFormatError):
            load_trace("0 0 - -\n", program)

    def test_bad_field_count(self, program):
        with pytest.raises(TraceFormatError):
            load_trace("# repro-trace v1 count=1\n0 0 -\n", program)

    def test_pc_out_of_range(self, program):
        with pytest.raises(TraceFormatError):
            load_trace("# repro-trace v1 count=1\n0 99 - -\n", program)

    def test_branch_flag_on_non_branch(self, program):
        with pytest.raises(TraceFormatError):
            load_trace("# repro-trace v1 count=1\n0 0 T -\n", program)

    def test_address_on_non_memory(self, program):
        with pytest.raises(TraceFormatError):
            load_trace("# repro-trace v1 count=1\n0 0 - @5\n", program)

    def test_count_mismatch(self, program):
        with pytest.raises(TraceFormatError):
            load_trace("# repro-trace v1 count=2\n0 0 - -\n", program)

    def test_bad_taken_flag(self, program):
        with pytest.raises(TraceFormatError):
            load_trace("# repro-trace v1 count=1\n0 1 X -\n", program)
