"""Tests for the campaign report generator."""

import pytest

from repro.analysis import ReportSpec, build_report
from repro.workloads import dependency_chain, independent_streams


@pytest.fixture(scope="module")
def report_text():
    spec = ReportSpec(
        engines=("simple", "rstu", "ruu-bypass"),
        window_size=8,
        sweep_engines=("rstu",),
        sweep_sizes=(3, 8),
    )
    return build_report(
        [dependency_chain(60), independent_streams(40)], spec
    )


class TestReport:
    def test_sections_present(self, report_text):
        assert "# RUU reproduction" in report_text
        assert "## Per-loop issue rates" in report_text
        assert "## Aggregate comparison" in report_text
        assert "## Stall breakdown" in report_text
        assert "## Window sweep: rstu" in report_text

    def test_workloads_listed(self, report_text):
        assert "chain" in report_text
        assert "streams" in report_text

    def test_markdown_tables_wellformed(self, report_text):
        for line in report_text.splitlines():
            if line.startswith("|"):
                assert line.endswith("|"), line

    def test_baseline_speedup_is_one(self, report_text):
        agg = report_text.split("## Aggregate comparison")[1]
        first_row = [
            line for line in agg.splitlines() if line.startswith("| simple")
        ][0]
        assert "| 1.000 |" in first_row

    def test_paper_column_in_sweep(self, report_text):
        sweep = report_text.split("## Window sweep: rstu")[1]
        # size 3 and 8 are in TABLE2, so paper cells are numeric
        assert "0.965" in sweep or "1.553" in sweep

    def test_optional_sections_toggle(self):
        spec = ReportSpec(
            engines=("simple",), sweep_engines=(),
            include_per_loop=False, include_stalls=False,
        )
        text = build_report([dependency_chain(40)], spec)
        assert "Per-loop" not in text
        assert "Stall breakdown" not in text
        assert "Aggregate comparison" in text

    def test_deterministic(self):
        spec = ReportSpec(engines=("simple",), sweep_engines=())
        workloads = [dependency_chain(40)]
        assert build_report(workloads, spec) == build_report(workloads, spec)
