"""Behavioural tests for the RUU engine: queue discipline, NI/LI
counters, bypass modes, in-order commit."""

import pytest

from repro.core import BypassMode, RUUEngine
from repro.isa import A, S, assemble
from repro.machine import MachineConfig, Memory, StallReason
from repro.trace import reference_state


def run_ruu(source, config=None, bypass=BypassMode.FULL, memory=None):
    program = assemble(source)
    engine = RUUEngine(
        program, config or MachineConfig(window_size=8),
        memory=memory, bypass=bypass,
    )
    result = engine.run()
    return engine, result


class TestQueueDiscipline:
    def test_commit_order_is_program_order(self):
        """Retire order must be sequential even when completion is not:
        a slow op followed by fast ones."""
        engine, result = run_ruu("""
            S_IMM S1, 2.0
            F_RECIP S2, S1
            A_IMM A1, 1
            A_IMM A2, 2
            A_IMM A3, 3
            HALT
        """)
        assert engine.retire_log == sorted(engine.retire_log)

    def test_window_full_blocks_issue(self):
        engine, result = run_ruu("""
            S_IMM S1, 1.0
            F_ADD S2, S1, S1
            F_ADD S3, S1, S1
            F_ADD S4, S1, S1
            F_ADD S5, S1, S1
            HALT
        """, MachineConfig(window_size=2))
        assert result.stalls[StallReason.WINDOW_FULL] >= 1
        assert engine.regs.read(S(5)) == 2.0

    def test_one_commit_per_cycle(self):
        # Six 1-cycle transmits: commits serialize at 1/cycle behind the
        # head, so total cycles >= instructions + commit drain.
        engine, result = run_ruu("""
            A_IMM A1, 1
            A_IMM A2, 2
            A_IMM A3, 3
            A_IMM A4, 4
            A_IMM A5, 5
            A_IMM A6, 6
            HALT
        """)
        assert result.cycles >= 8  # issue + execute + commit pipeline

    def test_window_drains_before_done(self):
        engine, result = run_ruu("A_IMM A1, 1\nHALT")
        assert len(engine.window) == 0
        assert engine.regs.read(A(1)) == 1


class TestInstanceCounters:
    def test_multiple_instances_of_one_register(self):
        engine, result = run_ruu("""
            A_IMM A1, 1
            A_ADDI A1, A1, 1
            A_ADDI A1, A1, 1
            A_ADDI A1, A1, 1
            HALT
        """)
        assert engine.regs.read(A(1)) == 4
        assert result.extra["max_ni_observed"] >= 2

    def test_instance_limit_blocks_issue(self):
        # 1-bit counters: at most one live instance per register.
        config = MachineConfig(window_size=16, counter_bits=1)
        engine, result = run_ruu("""
            S_IMM S1, 1.0
            F_ADD S2, S1, S1
            F_ADD S2, S1, S1
            F_ADD S2, S1, S1
            HALT
        """, config)
        assert result.stalls[StallReason.INSTANCE_LIMIT] >= 1
        assert engine.regs.read(S(2)) == 2.0

    def test_counters_return_to_zero(self):
        engine, _ = run_ruu("""
            A_IMM A1, 1
            A_ADDI A1, A1, 1
            A_ADDI A2, A1, 1
            HALT
        """)
        assert engine._ni == {}

    def test_li_wraps_modulo(self):
        config = MachineConfig(window_size=32, counter_bits=2)
        lines = ["A_IMM A1, 0"] + ["A_ADDI A1, A1, 1"] * 9 + ["HALT"]
        engine, result = run_ruu("\n".join(lines), config)
        assert engine.regs.read(A(1)) == 9


class TestBypassModes:
    CHAIN = """
        S_IMM S1, 1.0
        F_ADD S2, S1, S1
        NOP
        NOP
        NOP
        NOP
        NOP
        NOP
        F_ADD S3, S2, S2   ; issued long after S2's producer completed
        HALT
    """

    def test_nobypass_waits_for_commit_bus(self):
        _, full = run_ruu(self.CHAIN, bypass=BypassMode.FULL)
        _, none = run_ruu(self.CHAIN, bypass=BypassMode.NONE)
        assert none.cycles >= full.cycles

    def test_all_modes_correct(self):
        program = assemble(self.CHAIN)
        golden = reference_state(program)
        for mode in BypassMode:
            engine, _ = run_ruu(self.CHAIN, bypass=mode)
            assert engine.regs == golden.regs, mode

    def test_limited_bypass_helps_a_registers_only(self):
        # Branch on an A register computed by a slow op: LIMITED reads
        # the A future file; NONE must wait for the commit bus.
        source = """
            A_IMM A1, 3
            A_IMM A2, 4
            A_MUL A0, A1, A2     ; latency 6
            BR_NONZERO A0, skip
            NOP
        skip:
            HALT
        """
        _, limited = run_ruu(source, bypass=BypassMode.LIMITED)
        _, none = run_ruu(source, bypass=BypassMode.NONE)
        assert limited.cycles <= none.cycles

    def test_mode_recorded_in_result(self):
        _, result = run_ruu("HALT")
        assert result.extra["bypass_mode"] == "bypass"


class TestRUUMemory:
    def test_store_commits_in_order(self):
        """A store's memory write happens at commit: if an older
        instruction faults, memory must be untouched."""
        memory = Memory()
        engine, result = run_ruu("""
            A_IMM A1, 100
            S_IMM S1, 0.0
            F_RECIP S2, S1       ; arithmetic trap
            S_IMM S3, 5.0
            STORE_S A1[0], S3    ; younger than the trap
            HALT
        """, memory=memory)
        assert engine.interrupt_record is not None
        assert engine.interrupt_record.claims_precise
        assert memory.peek(100) == 0  # store never committed

    def test_store_to_load_forward(self):
        engine, _ = run_ruu("""
            A_IMM A1, 100
            S_IMM S1, 6.25
            STORE_S A1[0], S1
            LOAD_S S2, A1[0]
            HALT
        """)
        assert engine.regs.read(S(2)) == 6.25
        assert engine.mdu.forwards >= 1

    def test_load_around_uncommitted_store_different_address(self):
        engine, _ = run_ruu("""
            A_IMM A1, 100
            A_IMM A2, 200
            S_IMM S1, 1.5
            STORE_S A1[0], S1
            LOAD_S S2, A2[0]
            HALT
        """)
        assert engine.regs.read(S(2)) == 0


class TestMonotonicity:
    def test_bigger_window_never_slower(self):
        source = """
            A_IMM A1, 100
            A_IMM A0, 12
        loop:
            LOAD_S S1, A1[0]
            F_MUL S2, S1, S1
            F_ADD S3, S3, S2
            A_ADDI A1, A1, 1
            A_ADDI A0, A0, -1
            BR_NONZERO A0, loop
            HALT
        """
        cycles = []
        for size in (3, 6, 12, 24):
            _, result = run_ruu(source, MachineConfig(window_size=size))
            cycles.append(result.cycles)
        assert cycles == sorted(cycles, reverse=True) or all(
            a >= b for a, b in zip(cycles, cycles[1:])
        )
