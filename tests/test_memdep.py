"""Unit tests for the load registers (memory dependency unit)."""

import pytest

from repro.machine import SimulationError
from repro.memdep import FROM_MEMORY, MemoryDependencyUnit


@pytest.fixture
def mdu():
    return MemoryDependencyUnit(capacity=4)


class TestCapacity:
    def test_requires_positive_capacity(self):
        with pytest.raises(ValueError):
            MemoryDependencyUnit(0)

    def test_blocks_when_full(self, mdu):
        for seq in range(4):
            assert mdu.can_accept()
            mdu.add(seq, is_store=False)
        assert not mdu.can_accept()
        assert mdu.blocked_issues == 1

    def test_finish_frees_a_register(self, mdu):
        for seq in range(4):
            mdu.add(seq, is_store=False)
            mdu.resolve(seq, 100 + seq)
        mdu.finish(0)
        assert mdu.can_accept()
        assert mdu.in_flight() == 3


class TestProgramOrderRules:
    def test_adds_must_be_ordered(self, mdu):
        mdu.add(5, is_store=False)
        with pytest.raises(SimulationError):
            mdu.add(3, is_store=False)

    def test_resolution_in_order_only(self, mdu):
        mdu.add(0, is_store=True)
        mdu.add(1, is_store=False)
        with pytest.raises(SimulationError):
            mdu.resolve(1, 200)

    def test_oldest_unresolved_tracks(self, mdu):
        mdu.add(0, is_store=False)
        mdu.add(1, is_store=False)
        assert mdu.oldest_unresolved() == 0
        mdu.resolve(0, 10)
        assert mdu.oldest_unresolved() == 1
        mdu.resolve(1, 11)
        assert mdu.oldest_unresolved() is None

    def test_double_resolution_rejected(self, mdu):
        mdu.add(0, is_store=False)
        mdu.resolve(0, 10)
        with pytest.raises(SimulationError):
            mdu.resolve(0, 10)


class TestBinding:
    def test_load_with_no_match_reads_memory(self, mdu):
        mdu.add(0, is_store=False)
        assert mdu.resolve(0, 100) is FROM_MEMORY
        assert mdu.load_source_ready(0)

    def test_load_forwards_from_pending_store(self, mdu):
        mdu.add(0, is_store=True)
        mdu.resolve(0, 100)
        mdu.add(1, is_store=False)
        assert mdu.resolve(1, 100) == 0
        assert not mdu.load_source_ready(1)
        mdu.publish(0, 42.0)
        assert mdu.load_source_ready(1)
        assert mdu.forwarded_value(1) == 42.0
        assert mdu.forwards == 1

    def test_load_merges_with_pending_load(self, mdu):
        mdu.add(0, is_store=False)
        mdu.resolve(0, 100)
        mdu.add(1, is_store=False)
        assert mdu.resolve(1, 100) == 0

    def test_load_binds_to_youngest_older_producer(self, mdu):
        mdu.add(0, is_store=True)
        mdu.resolve(0, 100)
        mdu.add(1, is_store=True)
        mdu.resolve(1, 100)
        mdu.add(2, is_store=False)
        assert mdu.resolve(2, 100) == 1

    def test_different_addresses_do_not_bind(self, mdu):
        mdu.add(0, is_store=True)
        mdu.resolve(0, 100)
        mdu.add(1, is_store=False)
        assert mdu.resolve(1, 101) is FROM_MEMORY

    def test_finished_store_is_not_a_forward_source(self, mdu):
        mdu.add(0, is_store=True)
        mdu.resolve(0, 100)
        mdu.mark_dispatched(0)
        mdu.finish(0)
        mdu.add(1, is_store=False)
        assert mdu.resolve(1, 100) is FROM_MEMORY

    def test_forwarded_value_on_memory_load_rejected(self, mdu):
        mdu.add(0, is_store=False)
        mdu.resolve(0, 10)
        with pytest.raises(SimulationError):
            mdu.forwarded_value(0)


class TestStoreOrdering:
    def test_store_waits_for_older_same_address_ops(self, mdu):
        mdu.add(0, is_store=False)
        mdu.resolve(0, 100)
        mdu.add(1, is_store=True)
        mdu.resolve(1, 100)
        assert not mdu.store_may_dispatch(1)
        mdu.mark_dispatched(0)
        assert mdu.store_may_dispatch(1)

    def test_store_free_when_addresses_differ(self, mdu):
        mdu.add(0, is_store=False)
        mdu.resolve(0, 100)
        mdu.add(1, is_store=True)
        mdu.resolve(1, 200)
        assert mdu.store_may_dispatch(1)


class TestLifecycle:
    def test_published_value_survives_producer_finish(self, mdu):
        mdu.add(0, is_store=True)
        mdu.resolve(0, 100)
        mdu.publish(0, 9.0)
        mdu.add(1, is_store=False)
        mdu.resolve(1, 100)
        mdu.mark_dispatched(0)
        mdu.finish(0)
        # the consumer can still forward
        assert mdu.forwarded_value(1) == 9.0
        mdu.mark_dispatched(1)
        mdu.finish(1)
        assert mdu.in_flight() == 0
        assert mdu.active_addresses() == 0

    def test_double_finish_rejected(self, mdu):
        mdu.add(0, is_store=False)
        mdu.resolve(0, 1)
        mdu.finish(0)
        with pytest.raises(SimulationError):
            mdu.finish(0)

    def test_squash_from(self, mdu):
        mdu.add(0, is_store=True)
        mdu.resolve(0, 100)
        mdu.add(1, is_store=False)
        mdu.resolve(1, 100)
        mdu.add(2, is_store=False)
        mdu.squash_from(1)
        assert mdu.in_flight() == 1
        assert mdu.can_accept()
        # the survivor is still bound and publishable
        mdu.publish(0, 3.0)
        mdu.mark_dispatched(0)
        mdu.finish(0)
        assert mdu.in_flight() == 0

    def test_squash_everything(self, mdu):
        for seq in range(3):
            mdu.add(seq, is_store=seq == 0)
        mdu.resolve(0, 5)
        mdu.squash_from(0)
        assert mdu.in_flight() == 0
        assert mdu.active_addresses() == 0
