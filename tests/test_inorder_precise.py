"""Tests for the Smith & Pleszkun in-order precise-interrupt engines."""

import pytest

from repro.interrupts import (
    FutureFileEngine,
    HistoryBufferEngine,
    ReorderBufferBypassEngine,
    ReorderBufferEngine,
)
from repro.issue import SimpleEngine
from repro.isa import A, S, assemble
from repro.machine import MachineConfig, StallReason
from repro.trace import reference_state

SP_ENGINES = [
    ReorderBufferEngine,
    ReorderBufferBypassEngine,
    HistoryBufferEngine,
    FutureFileEngine,
]

CONFIG = MachineConfig(window_size=8)


def run(cls, source, config=None, memory=None):
    program = assemble(source)
    engine = cls(program, config or CONFIG, memory=memory)
    result = engine.run()
    return engine, result


DEP_CHAIN = """
    S_IMM S1, 1.0
    F_ADD S2, S1, S1
    F_ADD S3, S2, S2
    F_ADD S4, S3, S3
    HALT
"""


class TestDependencyAggravation:
    def test_plain_rob_slower_than_bypass(self):
        _, rob = run(ReorderBufferEngine, DEP_CHAIN)
        _, bypass = run(ReorderBufferBypassEngine, DEP_CHAIN)
        assert rob.cycles > bypass.cycles

    def test_bypass_history_future_perform_alike(self):
        cycles = []
        for cls in (ReorderBufferBypassEngine, HistoryBufferEngine,
                    FutureFileEngine):
            _, result = run(cls, DEP_CHAIN)
            cycles.append(result.cycles)
        assert max(cycles) - min(cycles) <= 2

    def test_rob_aggravation_vs_simple(self):
        """The reorder buffer's whole cost: a value can be read only
        after the buffer updates the register (paper §4)."""
        _, simple = run(SimpleEngine, DEP_CHAIN)
        _, rob = run(ReorderBufferEngine, DEP_CHAIN)
        assert rob.cycles > simple.cycles

    def test_buffer_full_stalls(self):
        config = MachineConfig(window_size=2)
        _, result = run(ReorderBufferEngine, """
            S_IMM S1, 1.0
            F_ADD S2, S1, S1
            F_ADD S3, S1, S1
            F_ADD S4, S1, S1
            F_ADD S5, S1, S1
            HALT
        """, config)
        assert result.stalls[StallReason.WINDOW_FULL] >= 1


class TestCorrectness:
    @pytest.mark.parametrize("cls", SP_ENGINES)
    def test_chain_result(self, cls):
        program = assemble(DEP_CHAIN)
        golden = reference_state(program)
        engine, result = run(cls, DEP_CHAIN)
        assert engine.regs == golden.regs
        assert result.instructions == golden.executed

    @pytest.mark.parametrize("cls", SP_ENGINES)
    def test_store_load_roundtrip(self, cls):
        engine, _ = run(cls, """
            A_IMM A1, 100
            S_IMM S1, 2.5
            STORE_S A1[0], S1
            LOAD_S S2, A1[0]
            HALT
        """)
        assert engine.regs.read(S(2)) == 2.5
        assert engine.memory.peek(100) == 2.5

    @pytest.mark.parametrize("cls", SP_ENGINES)
    def test_load_forwards_from_uncommitted_store(self, cls):
        """The store sits uncommitted in the buffer when the load
        issues; the load must see its datum, not stale memory."""
        engine, _ = run(cls, """
            A_IMM A1, 100
            S_IMM S1, 9.0
            STORE_S A1[0], S1
            LOAD_S S2, A1[0]
            F_ADD S3, S2, S2
            HALT
        """)
        assert engine.regs.read(S(3)) == 18.0


class TestRollbackMechanisms:
    FAULT_SOURCE = """
        A_IMM A1, 100
        S_IMM S1, 2.0
        S_IMM S2, 0.0
        F_RECIP S3, S2        ; traps
        S_IMM S1, 99.0        ; younger write, must be undone/withheld
        HALT
    """

    @pytest.mark.parametrize("cls", SP_ENGINES)
    def test_younger_write_not_visible_at_trap(self, cls):
        engine, _ = run(cls, self.FAULT_SOURCE)
        record = engine.interrupt_record
        assert record is not None and record.claims_precise
        assert engine.regs.read(S(1)) == 2.0

    def test_history_buffer_rolls_back_eager_writes(self):
        # The younger S_IMM (latency 1) writes the register file long
        # before the 14-cycle reciprocal traps; rollback must undo it.
        engine, _ = run(HistoryBufferEngine, self.FAULT_SOURCE)
        assert engine.regs.read(S(1)) == 2.0

    def test_future_file_resynchronized(self):
        engine, _ = run(FutureFileEngine, self.FAULT_SOURCE)
        assert engine.future.read(S(1)) == 2.0
        assert engine.future == engine.regs

    @pytest.mark.parametrize("cls", SP_ENGINES)
    def test_resume_completes_correctly(self, cls):
        # Fault on a load, service, resume.
        from repro.workloads import fault_probe
        from repro.trace import reference_state as ref
        wl = fault_probe()
        memory = wl.make_memory()
        memory.inject_fault(wl.fault_address)
        engine = cls(wl.program, CONFIG, memory=memory)
        engine.run()
        assert engine.interrupt_record is not None
        memory.service_fault(wl.fault_address)
        engine.continue_run()
        golden = ref(wl.program, wl.initial_memory)
        assert engine.regs == golden.regs
        assert engine.memory == golden.memory


class TestFutureFileDetails:
    def test_issue_reads_future_not_architectural(self):
        engine, _ = run(FutureFileEngine, """
            A_IMM A1, 5
            A_ADDI A2, A1, 1
            HALT
        """)
        assert engine.regs.read(A(2)) == 6

    def test_architectural_lags_future_mid_flight(self):
        # Indirectly validated: both files agree at the end.
        engine, _ = run(FutureFileEngine, DEP_CHAIN)
        assert engine.future == engine.regs
