"""Checkpoint/restore: capture, validation, cross-engine resume."""

import json

import pytest

from repro.analysis import ENGINE_FACTORIES
from repro.machine import Checkpoint, CheckpointError, MachineConfig
from repro.machine.checkpoint import VERSION
from repro.trace.iss import prefix_state, reference_state
from repro.workloads import fault_probe, lll3

CONFIG = MachineConfig(window_size=10)


def trapped_engine(name="ruu-bypass", workload=None):
    """Run ``name`` on a fault-injected workload up to its precise trap."""
    workload = workload or fault_probe()
    memory = workload.make_memory()
    memory.inject_fault(workload.fault_address)
    engine = ENGINE_FACTORIES[name](workload.program, CONFIG, memory)
    engine.run()
    record = engine.interrupt_record
    assert record is not None and record.claims_precise
    return engine, workload


def finish_and_verify(machine, workload):
    """Service the fault, resume, and compare against the golden ISS."""
    machine.memory.service_fault(workload.fault_address)
    machine.continue_run()
    golden = reference_state(workload.program, workload.initial_memory)
    assert machine.regs.snapshot() == golden.regs.snapshot()
    assert machine.memory == golden.memory
    assert machine.retired == golden.executed


class TestCaptureRestore:
    def test_round_trip_same_engine(self, tmp_path):
        engine, workload = trapped_engine()
        record = engine.interrupt_record
        path = Checkpoint.capture(engine).save(str(tmp_path / "ck.json"))
        del engine  # restore must work from the file alone

        machine = Checkpoint.load(path).restore()
        # Restored architectural state is exactly the program-order
        # prefix up to the faulting instruction.
        golden = prefix_state(workload.program, record.seq,
                              workload.initial_memory)
        assert machine.regs.snapshot() == golden.regs.snapshot()
        assert machine.interrupt_record.same_event(record)
        finish_and_verify(machine, workload)

    def test_cross_engine_restore(self, tmp_path):
        engine, workload = trapped_engine("ruu-bypass")
        path = Checkpoint.capture(engine).save(str(tmp_path / "ck.json"))
        del engine
        machine = Checkpoint.load(path).restore(engine="history-buffer")
        assert machine.name == "history-buffer"
        finish_and_verify(machine, workload)

    def test_restore_drained_engine(self):
        workload = lll3(n=30)
        engine = ENGINE_FACTORIES["ruu-bypass"](
            workload.program, CONFIG, workload.make_memory()
        )
        result = engine.run()
        machine = Checkpoint.capture(engine).restore()
        assert machine.regs.snapshot() == engine.regs.snapshot()
        assert machine.retired == result.instructions
        assert machine.done()

    def test_counters_and_stalls_survive(self):
        engine, _ = trapped_engine()
        machine = Checkpoint.capture(engine).restore()
        assert machine.cycle == engine.cycle
        assert machine.pc == engine.pc
        assert machine.retired == engine.retired
        assert machine.stalls == engine.stalls
        assert machine.retire_log == engine.retire_log


class TestRefusals:
    def test_mid_flight_engine_refused(self):
        workload = lll3(n=30)
        engine = ENGINE_FACTORIES["ruu-bypass"](
            workload.program, CONFIG, workload.make_memory()
        )
        for _ in range(10):  # tick by hand: instructions left in flight
            engine.tick()
            engine.cycle += 1
        assert not engine.done()
        with pytest.raises(CheckpointError, match="mid-flight"):
            Checkpoint.capture(engine)

    def test_imprecise_trap_refused(self):
        workload = fault_probe()
        memory = workload.make_memory()
        memory.inject_fault(workload.fault_address)
        engine = ENGINE_FACTORIES["tomasulo"](
            workload.program, CONFIG, memory
        )
        engine.run()
        assert engine.interrupt_record is not None
        with pytest.raises(CheckpointError, match="imprecise"):
            Checkpoint.capture(engine)

    def test_interrupted_restore_into_imprecise_refused(self):
        engine, _ = trapped_engine()
        checkpoint = Checkpoint.capture(engine)
        with pytest.raises(CheckpointError, match="precise"):
            checkpoint.restore(engine="tomasulo")

    def test_unknown_target_engine(self):
        engine, _ = trapped_engine()
        with pytest.raises(CheckpointError, match="unknown engine"):
            Checkpoint.capture(engine).restore(engine="no-such-machine")


class TestFileFormat:
    def test_checksum_rejects_corruption(self, tmp_path):
        engine, _ = trapped_engine()
        path = str(tmp_path / "ck.json")
        Checkpoint.capture(engine).save(path)
        with open(path) as handle:
            document = json.load(handle)
        document["payload"]["counters"]["retired"] += 1
        with open(path, "w") as handle:
            json.dump(document, handle)
        with pytest.raises(CheckpointError, match="checksum"):
            Checkpoint.load(path)

    def test_version_gate(self, tmp_path):
        engine, _ = trapped_engine()
        document = Checkpoint.capture(engine).to_json()
        document["version"] = VERSION + 1
        with pytest.raises(CheckpointError, match="version"):
            Checkpoint.from_json(document)

    def test_not_a_checkpoint(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{\"format\": \"something-else\"}")
        with pytest.raises(CheckpointError):
            Checkpoint.load(str(path))
        path.write_text("not json")
        with pytest.raises(CheckpointError, match="cannot read"):
            Checkpoint.load(str(path))

    def test_save_is_atomic(self, tmp_path):
        engine, _ = trapped_engine()
        path = str(tmp_path / "ck.json")
        Checkpoint.capture(engine).save(path)
        leftovers = [name for name in tmp_path.iterdir()
                     if ".tmp" in name.name]
        assert leftovers == []

    def test_json_round_trip_is_lossless(self):
        engine, _ = trapped_engine()
        checkpoint = Checkpoint.capture(engine)
        restored = Checkpoint.from_json(
            json.loads(json.dumps(checkpoint.to_json()))
        )
        assert restored.registers == checkpoint.registers
        assert restored.memory_words == checkpoint.memory_words
        assert restored.counters == checkpoint.counters
        assert restored.interrupt.same_event(checkpoint.interrupt)
        assert restored.config == checkpoint.config
        assert list(restored.program) == list(checkpoint.program)
