"""Exhaustive fault-injection campaigns: precision at every data site."""

import pytest

from repro.analysis import ENGINE_FACTORIES
from repro.core import (
    BypassMode,
    RUUEngine,
    SpeculativeRUUEngine,
    fault_injection_campaign,
)
from repro.interrupts import HistoryBufferEngine
from repro.machine import MachineConfig
from repro.machine.faults import SimulationError
from repro.workloads import (
    LIVERMORE_FACTORIES,
    fault_probe,
    memory_alias_kernel,
)

CONFIG = MachineConfig(window_size=10)


def ruu_factory(bypass=BypassMode.FULL):
    return lambda program, memory: RUUEngine(
        program, CONFIG, memory=memory, bypass=bypass
    )


class TestCampaigns:
    @pytest.mark.parametrize("loop", [1, 3, 5, 12])
    def test_every_site_precise_on_ruu(self, loop):
        workload = LIVERMORE_FACTORIES[loop](
            **({"n": 24} if loop != 3 else {"n": 30})
        )
        result = fault_injection_campaign(
            ruu_factory(), workload, max_sites=20
        )
        assert result.faults_taken > 0
        assert result.all_precise, result.imprecise_sites
        assert result.all_recovered
        assert "OK" in result.describe()

    @pytest.mark.parametrize("bypass", list(BypassMode))
    def test_all_bypass_modes(self, bypass):
        workload = LIVERMORE_FACTORIES[5](n=24)
        result = fault_injection_campaign(
            ruu_factory(bypass), workload, max_sites=12
        )
        assert result.all_precise and result.all_recovered

    def test_speculative_engine_campaign(self):
        workload = LIVERMORE_FACTORIES[3](n=30)
        factory = lambda program, memory: SpeculativeRUUEngine(
            program, CONFIG, memory=memory
        )
        result = fault_injection_campaign(factory, workload, max_sites=12)
        assert result.faults_taken > 0
        assert result.all_precise and result.all_recovered

    def test_history_buffer_campaign(self):
        workload = LIVERMORE_FACTORIES[12](n=30)
        factory = lambda program, memory: HistoryBufferEngine(
            program, CONFIG, memory=memory
        )
        result = fault_injection_campaign(factory, workload, max_sites=12)
        assert result.all_precise and result.all_recovered

    def test_aliased_stores_campaign(self):
        """The alias kernel's read-modify-write traffic is the hardest
        case: every address has both pending loads and stores."""
        workload = memory_alias_kernel(iterations=12)
        result = fault_injection_campaign(ruu_factory(), workload)
        assert result.sites_tested == 4
        assert result.faults_taken == 4
        assert result.all_precise and result.all_recovered

    def test_site_cap_respected(self):
        workload = LIVERMORE_FACTORIES[12](n=40)
        result = fault_injection_campaign(
            ruu_factory(), workload, max_sites=5
        )
        assert result.sites_tested <= 5


class TestImpreciseEngines:
    """Negative controls: the paper's problem machines must *fail* the
    precision claim, and the harness must refuse to resume them.  If one
    of these ever starts passing, either the engine quietly became
    precise (update its ``claims_precise_interrupts``) or the verifier
    stopped checking anything."""

    IMPRECISE = ["tomasulo", "dispatch-stack", "simple"]

    def trap(self, name):
        workload = fault_probe()
        memory = workload.make_memory()
        memory.inject_fault(workload.fault_address)
        engine = ENGINE_FACTORIES[name](workload.program, CONFIG, memory)
        engine.run()
        return engine, workload

    @pytest.mark.parametrize("name", IMPRECISE)
    def test_interrupt_is_reported_imprecise(self, name):
        engine, _ = self.trap(name)
        record = engine.interrupt_record
        assert record is not None, "fault was never taken"
        assert not record.claims_precise
        assert not engine.claims_precise_interrupts
        assert "IMPRECISE" in record.describe()

    @pytest.mark.parametrize("name", IMPRECISE)
    def test_resume_is_refused(self, name):
        engine, workload = self.trap(name)
        engine.memory.service_fault(workload.fault_address)
        with pytest.raises(SimulationError, match="imprecise"):
            engine.continue_run()
