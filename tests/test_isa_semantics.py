"""Unit tests for the shared ISA value semantics."""

import pytest

from repro.isa import (
    A,
    ArithmeticFault,
    B,
    Opcode,
    S,
    T,
    branch_taken,
    coerce_for_bank,
    effective_address,
    evaluate,
    wrap_a,
    wrap_s_int,
)
from repro.isa.semantics import wrap_signed


class TestWrapping:
    @pytest.mark.parametrize("value,bits,expected", [
        (0, 8, 0),
        (127, 8, 127),
        (128, 8, -128),
        (255, 8, -1),
        (256, 8, 0),
        (-129, 8, 127),
    ])
    def test_wrap_signed(self, value, bits, expected):
        assert wrap_signed(value, bits) == expected

    def test_wrap_a_is_24_bit(self):
        assert wrap_a((1 << 23) - 1) == (1 << 23) - 1
        assert wrap_a(1 << 23) == -(1 << 23)
        assert wrap_a(1 << 24) == 0

    def test_wrap_s_int_is_64_bit(self):
        assert wrap_s_int((1 << 63) - 1) == (1 << 63) - 1
        assert wrap_s_int(1 << 63) == -(1 << 63)

    def test_wrap_idempotent(self):
        for value in (-100, 0, 99, 12345):
            assert wrap_a(wrap_a(value)) == wrap_a(value)


class TestEvaluate:
    @pytest.mark.parametrize("op,operands,imm,expected", [
        (Opcode.A_ADD, [3, 4], None, 7),
        (Opcode.A_SUB, [3, 4], None, -1),
        (Opcode.A_MUL, [3, 4], None, 12),
        (Opcode.A_ADDI, [10], -3, 7),
        (Opcode.A_IMM, [], 42, 42),
        (Opcode.S_IMM, [], 2.5, 2.5),
        (Opcode.S_ADD, [5, 9], None, 14),
        (Opcode.S_SUB, [5, 9], None, -4),
        (Opcode.S_AND, [0b1100, 0b1010], None, 0b1000),
        (Opcode.S_OR, [0b1100, 0b1010], None, 0b1110),
        (Opcode.S_XOR, [0b1100, 0b1010], None, 0b0110),
        (Opcode.S_SHL, [1], 4, 16),
        (Opcode.S_SHR, [16], 4, 1),
        (Opcode.F_ADD, [1.5, 2.25], None, 3.75),
        (Opcode.F_SUB, [1.5, 2.25], None, -0.75),
        (Opcode.F_MUL, [1.5, 2.0], None, 3.0),
        (Opcode.F_RECIP, [4.0], None, 0.25),
        (Opcode.MOV, [99], None, 99),
    ])
    def test_basic_results(self, op, operands, imm, expected):
        assert evaluate(op, operands, imm) == expected

    def test_recip_of_zero_faults(self):
        with pytest.raises(ArithmeticFault):
            evaluate(Opcode.F_RECIP, [0.0])

    def test_float_overflow_faults(self):
        with pytest.raises(ArithmeticFault):
            evaluate(Opcode.F_MUL, [1e308, 1e308])

    def test_integer_op_on_fraction_faults(self):
        with pytest.raises(ArithmeticFault):
            evaluate(Opcode.A_ADD, [1.5, 2])

    def test_integer_op_on_integral_float_ok(self):
        assert evaluate(Opcode.A_ADD, [2.0, 3]) == 5

    def test_shift_is_logical_on_64_bit_pattern(self):
        # -1 has all 64 bits set; shifting right by 60 leaves 0b1111.
        assert evaluate(Opcode.S_SHR, [-1], 60) == 0b1111

    def test_branch_has_no_alu_semantics(self):
        with pytest.raises(ValueError):
            evaluate(Opcode.BR_ZERO, [0])


class TestCoercion:
    def test_a_bank_wraps_24_bit(self):
        assert coerce_for_bank(A(0), 1 << 24) == 0

    def test_b_bank_matches_a(self):
        assert coerce_for_bank(B(0), -1) == -1

    def test_s_bank_keeps_floats(self):
        assert coerce_for_bank(S(0), 2.75) == 2.75

    def test_t_bank_wraps_int(self):
        assert coerce_for_bank(T(0), (1 << 64) + 5) == 5

    def test_a_bank_rejects_fractions(self):
        with pytest.raises(ArithmeticFault):
            coerce_for_bank(A(0), 2.5)


class TestBranches:
    @pytest.mark.parametrize("op,value,expected", [
        (Opcode.BR_ZERO, 0, True),
        (Opcode.BR_ZERO, 1, False),
        (Opcode.BR_NONZERO, 0, False),
        (Opcode.BR_NONZERO, -3, True),
        (Opcode.BR_PLUS, 0, True),
        (Opcode.BR_PLUS, 5, True),
        (Opcode.BR_PLUS, -1, False),
        (Opcode.BR_MINUS, -1, True),
        (Opcode.BR_MINUS, 0, False),
    ])
    def test_conditions(self, op, value, expected):
        assert branch_taken(op, value) is expected

    def test_non_branch_rejected(self):
        with pytest.raises(ValueError):
            branch_taken(Opcode.A_ADD, 0)


class TestEffectiveAddress:
    def test_base_plus_offset(self):
        assert effective_address(100, 11) == 111
        assert effective_address(100, -1) == 99

    def test_wraps_to_a_width(self):
        assert effective_address((1 << 23) - 1, 1) == -(1 << 23)
