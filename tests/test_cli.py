"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


@pytest.fixture
def asm_file(tmp_path):
    path = tmp_path / "prog.asm"
    path.write_text("""
        A_IMM A0, 3
    loop:
        A_ADDI A0, A0, -1
        BR_NONZERO A0, loop
        HALT
    """)
    return str(path)


class TestRunCommand:
    def test_run_default_engine(self, asm_file, capsys):
        assert main(["run", asm_file]) == 0
        out = capsys.readouterr().out
        assert "ruu-bypass" in out
        assert "instructions" in out

    def test_run_each_engine(self, asm_file, capsys):
        for engine in ("simple", "rstu", "spec-ruu", "history-buffer"):
            assert main(["run", asm_file, "--engine", engine]) == 0

    def test_run_with_registers(self, asm_file, capsys, tmp_path):
        path = tmp_path / "regs.asm"
        path.write_text("A_IMM A5, 42\nHALT")
        assert main(["run", str(path), "--registers"]) == 0
        assert "A5 = 42" in capsys.readouterr().out

    def test_window_flag(self, asm_file):
        assert main(["run", asm_file, "--window", "4"]) == 0

    def test_timeline_flag_prints_gantt(self, asm_file, capsys):
        assert main(["run", asm_file, "--timeline"]) == 0
        out = capsys.readouterr().out
        assert "D=decode I=issue X=dispatch C=complete R=commit" in out
        assert "average stage delays" in out
        assert "cycles 0.." in out

    def test_no_timeline_by_default(self, asm_file, capsys):
        assert main(["run", asm_file]) == 0
        assert "D=decode" not in capsys.readouterr().out


class TestVersionFlag:
    def test_version_prints_and_exits(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        assert out.split()[1][0].isdigit()

    def test_version_matches_package(self, capsys):
        from repro.version import get_version

        with pytest.raises(SystemExit):
            main(["--version"])
        assert get_version() in capsys.readouterr().out


class TestLoopsCommand:
    def test_lists_all_fourteen(self, capsys):
        assert main(["loops"]) == 0
        out = capsys.readouterr().out
        for number in range(1, 15):
            assert f"LLL{number}" in out


class TestCompareCommand:
    def test_compare_subset(self, capsys):
        assert main(["compare", "3", "--window", "8"]) == 0
        out = capsys.readouterr().out
        assert "simple" in out and "ruu-bypass" in out
        assert "speedup" in out


class TestArgErrors:
    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_engine(self, asm_file):
        with pytest.raises(SystemExit):
            main(["run", asm_file, "--engine", "nope"])


class TestLoadbenchArgs:
    def test_attach_requires_a_port(self, capsys):
        assert main(["loadbench"]) == 2
        assert "--port" in capsys.readouterr().out


class TestHelpListsCommands:
    def test_help_lists_trace_and_diff(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for command in ("run", "trace", "diff", "serve", "loadbench"):
            assert command in out


class TestTimelineJson:
    def test_timeline_json_round_trips(self, asm_file, tmp_path, capsys):
        import json

        from repro.machine import Timeline

        path = tmp_path / "timeline.json"
        assert main(["run", asm_file, "--timeline-json", str(path)]) == 0
        assert f"wrote {path}" in capsys.readouterr().out
        payload = json.loads(path.read_text())
        timeline = Timeline.from_json(payload)
        assert timeline.sequences()
        assert timeline.to_json() == payload

    def test_timeline_json_without_gantt(self, asm_file, tmp_path,
                                         capsys):
        path = tmp_path / "timeline.json"
        assert main(["run", asm_file, "--timeline-json", str(path)]) == 0
        assert "D=decode" not in capsys.readouterr().out

    def test_first_last_window_the_gantt(self, asm_file, capsys):
        assert main(["run", asm_file, "--timeline",
                     "--first", "2", "--last", "3"]) == 0
        out = capsys.readouterr().out
        assert "#2" in out and "#3" in out
        assert "#0 " not in out and "#4 " not in out


class TestTraceCommand:
    def test_trace_writes_valid_chrome_json(self, asm_file, tmp_path,
                                            capsys):
        import json

        from repro.obs import validate_chrome_trace

        out_path = tmp_path / "trace.json"
        assert main(["trace", asm_file, "--engine", "tomasulo",
                     "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "cycle attribution" in out
        assert "committed" in out
        document = json.loads(out_path.read_text())
        assert validate_chrome_trace(document) == []

    def test_trace_accepts_workload_names(self, capsys):
        assert main(["trace", "LLL1", "--engine", "simple",
                     "--window", "8"]) == 0
        assert "LLL1" in capsys.readouterr().out

    def test_trace_unknown_file_raises(self, tmp_path):
        with pytest.raises(OSError):
            main(["trace", str(tmp_path / "missing.asm")])


class TestDiffCommand:
    def test_self_diff_reports_no_divergence(self, asm_file, capsys):
        assert main(["diff", asm_file,
                     "--engines", "ruu-bypass,ruu-bypass"]) == 0
        out = capsys.readouterr().out
        assert "no divergence" in out
        assert "commit stream: identical" in out

    def test_cross_engine_diff_on_workload(self, capsys):
        assert main(["diff", "LLL3", "--engines", "ruu-bypass,tomasulo",
                     "--window", "8", "--iss"]) == 0
        out = capsys.readouterr().out
        assert "ruu-bypass vs tomasulo" in out
        assert "matches the golden ISS commit order" in out
        assert "diverges from the golden ISS" in out

    def test_diff_json_output(self, asm_file, tmp_path, capsys):
        import json

        path = tmp_path / "diff.json"
        assert main(["diff", asm_file, "--engines", "simple,rstu",
                     "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["engine_a"] == "simple"
        assert payload["engine_b"] == "rstu"
        assert isinstance(payload["identical"], bool)

    def test_diff_needs_exactly_two_engines(self, asm_file, capsys):
        assert main(["diff", asm_file, "--engines", "simple"]) == 2
        assert main(["diff", asm_file,
                     "--engines", "simple,rstu,ruu-bypass"]) == 2

    def test_diff_rejects_unknown_engine(self, asm_file, capsys):
        assert main(["diff", asm_file, "--engines", "simple,nope"]) == 2
        assert "unknown engine" in capsys.readouterr().out
