"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


@pytest.fixture
def asm_file(tmp_path):
    path = tmp_path / "prog.asm"
    path.write_text("""
        A_IMM A0, 3
    loop:
        A_ADDI A0, A0, -1
        BR_NONZERO A0, loop
        HALT
    """)
    return str(path)


class TestRunCommand:
    def test_run_default_engine(self, asm_file, capsys):
        assert main(["run", asm_file]) == 0
        out = capsys.readouterr().out
        assert "ruu-bypass" in out
        assert "instructions" in out

    def test_run_each_engine(self, asm_file, capsys):
        for engine in ("simple", "rstu", "spec-ruu", "history-buffer"):
            assert main(["run", asm_file, "--engine", engine]) == 0

    def test_run_with_registers(self, asm_file, capsys, tmp_path):
        path = tmp_path / "regs.asm"
        path.write_text("A_IMM A5, 42\nHALT")
        assert main(["run", str(path), "--registers"]) == 0
        assert "A5 = 42" in capsys.readouterr().out

    def test_window_flag(self, asm_file):
        assert main(["run", asm_file, "--window", "4"]) == 0

    def test_timeline_flag_prints_gantt(self, asm_file, capsys):
        assert main(["run", asm_file, "--timeline"]) == 0
        out = capsys.readouterr().out
        assert "D=decode I=issue X=dispatch C=complete R=commit" in out
        assert "average stage delays" in out
        assert "cycles 0.." in out

    def test_no_timeline_by_default(self, asm_file, capsys):
        assert main(["run", asm_file]) == 0
        assert "D=decode" not in capsys.readouterr().out


class TestVersionFlag:
    def test_version_prints_and_exits(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        assert out.split()[1][0].isdigit()

    def test_version_matches_package(self, capsys):
        from repro.version import get_version

        with pytest.raises(SystemExit):
            main(["--version"])
        assert get_version() in capsys.readouterr().out


class TestLoopsCommand:
    def test_lists_all_fourteen(self, capsys):
        assert main(["loops"]) == 0
        out = capsys.readouterr().out
        for number in range(1, 15):
            assert f"LLL{number}" in out


class TestCompareCommand:
    def test_compare_subset(self, capsys):
        assert main(["compare", "3", "--window", "8"]) == 0
        out = capsys.readouterr().out
        assert "simple" in out and "ruu-bypass" in out
        assert "speedup" in out


class TestArgErrors:
    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_engine(self, asm_file):
        with pytest.raises(SystemExit):
            main(["run", asm_file, "--engine", "nope"])


class TestLoadbenchArgs:
    def test_attach_requires_a_port(self, capsys):
        assert main(["loadbench"]) == 2
        assert "--port" in capsys.readouterr().out
