"""Setup shim for offline legacy editable installs (no `wheel` package).

All real metadata lives in pyproject.toml; use
``pip install -e . --no-build-isolation --no-use-pep517`` when the
``wheel`` package is unavailable.
"""
from setuptools import setup

setup()
